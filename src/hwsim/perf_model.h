#pragma once
// Whole-model timing: the execution-time column of Table I and the
// paper's two headline performance numbers (software decode 1.47x
// *slower*, hardware-assisted decode 1.35x *faster* than the
// uncompressed baseline).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bnn/model.h"
#include "bnn/reactnet.h"
#include "compress/pipeline.h"
#include "hwsim/conv_trace.h"
#include "hwsim/params.h"

namespace bkc::hwsim {

/// Cycle estimate for one op.
struct OpTiming {
  std::string name;
  bnn::OpClass op_class = bnn::OpClass::kOther;
  std::uint64_t cycles = 0;
};

/// Whole-model baseline timing with the per-class aggregation used by
/// Table I's execution-time column.
struct ModelTiming {
  std::vector<OpTiming> ops;
  std::map<bnn::OpClass, std::uint64_t> cycles_by_class;
  std::uint64_t total_cycles = 0;

  void add(OpTiming op);
  double fraction(bnn::OpClass op_class) const;
};

/// Analytic cycle model for the non-binary ops (stem, classifier,
/// normalization/activation): throughput-limited compute plus DRAM
/// bandwidth for their parameter traffic.
std::uint64_t analytic_op_cycles(const bnn::OpRecord& op,
                                 const CpuParams& cpu);

/// Baseline timing of every op in a model (binary convs simulated,
/// everything else analytic).
ModelTiming time_model_baseline(const std::vector<bnn::OpRecord>& ops,
                                const CpuParams& cpu = {},
                                const SamplingParams& sampling = {});

/// Per-3x3-layer variant comparison.
struct LayerComparison {
  std::string name;
  std::uint64_t baseline_cycles = 0;
  std::uint64_t sw_cycles = 0;
  std::uint64_t hw_cycles = 0;
  double sw_slowdown() const;  ///< sw / baseline (> 1 is slower)
  double hw_speedup() const;   ///< baseline / hw (> 1 is faster)
  LayerSimResult baseline_detail;
  LayerSimResult sw_detail;
  LayerSimResult hw_detail;
};

/// The full Sec VI performance experiment.
struct SpeedupReport {
  std::vector<LayerComparison> conv3x3;
  std::uint64_t other_cycles = 0;  ///< all non-3x3 ops (variant-invariant)
  std::uint64_t total_baseline = 0;
  std::uint64_t total_sw = 0;
  std::uint64_t total_hw = 0;

  double model_sw_slowdown() const;   ///< paper: 1.47x
  double model_hw_speedup() const;    ///< paper: 1.35x
  double conv3x3_sw_slowdown() const;
  double conv3x3_hw_speedup() const;
};

/// Run the three variants over every 3x3 binary conv of a ReActNet,
/// using the clustered compressed streams produced by `compressor`.
SpeedupReport compare_model(const bnn::ReActNet& model,
                            const compress::ModelCompressor& compressor,
                            const CpuParams& cpu = {},
                            const DecoderParams& decoder = {},
                            const SamplingParams& sampling = {});

/// Helper: per-sequence codeword lengths (stream order) of a compressed
/// kernel, for feeding the decoder-unit timing model.
StreamInfo stream_info_for(const compress::KernelCompression& compression);

}  // namespace bkc::hwsim
