#include "hwsim/conv_trace.h"

#include <algorithm>

#include "util/check.h"

namespace bkc::hwsim {

std::string variant_name(ConvVariant variant) {
  switch (variant) {
    case ConvVariant::kBaseline:
      return "baseline";
    case ConvVariant::kSwDecode:
      return "sw-decode";
    case ConvVariant::kHwDecode:
      return "hw-decode";
  }
  unreachable("variant_name: bad enum");
}

LayerGeometry LayerGeometry::from_op(const bnn::OpRecord& op,
                                     int vector_bits) {
  check(op.kernel_shape.kernel_h == op.kernel_shape.kernel_w,
        "LayerGeometry: only square kernels are simulated");
  LayerGeometry g;
  g.in_channels = op.kernel_shape.in_channels;
  g.out_channels = op.kernel_shape.out_channels;
  g.kernel = op.kernel_shape.kernel_h;
  g.stride = op.geometry.stride;
  g.padding = op.geometry.padding;
  g.in_h = op.input_shape.height;
  g.in_w = op.input_shape.width;
  g.out_h = op.output_shape.height;
  g.out_w = op.output_shape.width;
  g.groups = (g.in_channels + vector_bits - 1) / vector_bits;
  check(g.groups >= 1 && g.out_h >= 1 && g.out_w >= 1,
        "LayerGeometry: degenerate layer");
  return g;
}

namespace {

// Simulated address space (byte addresses; buffers are far apart so they
// never alias in the caches by accident).
constexpr std::uint64_t kInputBase = 0x10000000;
constexpr std::uint64_t kWeightBase = 0x20000000;
constexpr std::uint64_t kScratchBase = 0x30000000;
constexpr std::uint64_t kOutputBase = 0x40000000;
constexpr std::uint64_t kStreamBase = 0x50000000;
constexpr std::uint64_t kTableBase = 0x60000000;

/// Emit the trace of one output row sweep.
///
/// The generated code is *software-pipelined* the way daBNN's unrolled
/// NEON kernels are: within a pixel, all position loads issue first and
/// the xnor/popcount ops consume them a constant distance later, so L1
/// hit latency is hidden and only real misses stall. The weight words of
/// each (output-channel, group) section are acquired up front; the first
/// compute op of the section waits for the last of them, exposing the
/// weight-fetch latency exactly once per section - this is the latency
/// the decoding unit hides in the kHwDecode variant.
void emit_row(std::vector<MicroOp>& trace, const LayerGeometry& g,
              ConvVariant variant, std::int64_t row, int vector_bytes) {
  const std::int64_t positions = g.positions();
  const auto vb = static_cast<std::uint16_t>(vector_bytes);
  for (std::int64_t o = 0; o < g.out_channels; ++o) {
    for (std::int64_t grp = 0; grp < g.groups; ++grp) {
      // Acquire the weight words for (o, grp): one per kernel position.
      const std::uint64_t weight_row_base =
          (variant == ConvVariant::kSwDecode ? kScratchBase : kWeightBase);
      for (std::int64_t pos = 0; pos < positions; ++pos) {
        if (variant == ConvVariant::kHwDecode) {
          trace.push_back({.kind = UopKind::kLoadPacked});
        } else {
          const std::uint64_t addr =
              weight_row_base +
              static_cast<std::uint64_t>(((o * g.groups + grp) * positions +
                                          pos) *
                                         vector_bytes);
          trace.push_back(
              {.kind = UopKind::kLoad, .addr = addr, .bytes = vb});
        }
      }
      // The compute below reads the weight registers: synchronise on the
      // last weight acquisition (DRAM serialisation makes it complete
      // last, so one dependency models the whole set).
      trace.push_back({.kind = UopKind::kScalar, .dep = 1});
      // Stream the row's pixels.
      for (std::int64_t x = 0; x < g.out_w; ++x) {
        const std::int64_t base_y = row * g.stride - g.padding;
        const std::int64_t base_x = x * g.stride - g.padding;
        // Phase 1: all position loads (2 uops each: addr-gen + load).
        for (std::int64_t pos = 0; pos < positions; ++pos) {
          const std::int64_t iy = base_y + pos / g.kernel;
          const std::int64_t ix = base_x + pos % g.kernel;
          trace.push_back({.kind = UopKind::kScalar});
          if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
            const std::uint64_t addr =
                kInputBase +
                static_cast<std::uint64_t>(((iy * g.in_w + ix) * g.groups +
                                            grp) *
                                           vector_bytes);
            trace.push_back(
                {.kind = UopKind::kLoad, .addr = addr, .bytes = vb});
          } else {
            // Padding: the -1 constant lives in a register; model the
            // select as a 1-cycle vector op in place of the load.
            trace.push_back({.kind = UopKind::kVector});
          }
        }
        // Phase 2: xnor+popcount+accumulate per position. eor_p sits a
        // constant 2*positions-1 uops after load_p; the accumulator
        // chains through the pixel.
        const auto eor_dep = static_cast<std::uint32_t>(2 * positions - 1);
        for (std::int64_t pos = 0; pos < positions; ++pos) {
          trace.push_back({.kind = UopKind::kVector, .dep = eor_dep});
          const bool first_acc = pos == 0 && x == 0;
          const std::uint32_t acc_dep =
              pos == 0 ? static_cast<std::uint32_t>(2 * positions + 2) : 2;
          trace.push_back({.kind = UopKind::kVector,
                           .dep = first_acc ? 0 : acc_dep});
        }
      }
      trace.push_back({.kind = UopKind::kBranch});
    }
    // Reduce + store one output value per pixel of the row.
    for (std::int64_t x = 0; x < g.out_w; ++x) {
      trace.push_back({.kind = UopKind::kScalar});
      const std::uint64_t addr =
          kOutputBase + static_cast<std::uint64_t>(
                            ((o * g.out_h + row) * g.out_w + x) * 2);
      trace.push_back({.kind = UopKind::kStore, .addr = addr, .bytes = 2});
    }
    trace.push_back({.kind = UopKind::kBranch});
  }
}

/// Emit the one-time software decode pass for `count` sequences starting
/// at stream bit offset tracked via `bits_done`.
void emit_sw_decode(std::vector<MicroOp>& trace, const StreamInfo& stream,
                    std::size_t first_seq, std::size_t count,
                    std::uint64_t& bits_done, int vector_bytes) {
  std::uint64_t packed_in_group = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t seq = first_seq + i;
    // Refill the 64-bit stream window when it runs dry.
    const std::uint64_t before = bits_done / 64;
    bits_done += stream.code_lengths[seq];
    if (bits_done / 64 != before) {
      trace.push_back({.kind = UopKind::kLoad,
                       .addr = kStreamBase + (bits_done / 64) * 8,
                       .bytes = 8});
    }
    // Prefix probe, length lookup, shift/mask of the index bits
    // (Sec IV-B: "the overhead of decoding and packing the bit
    // sequences at runtime").
    for (int s = 0; s < 4; ++s) {
      trace.push_back({.kind = UopKind::kScalar});
    }
    // Uncompressed-table lookup.
    trace.push_back({.kind = UopKind::kLoad,
                     .addr = kTableBase + (seq % 672) * 2,
                     .bytes = 2});
    // Channel packing: insert one bit into each of the 9 packing words.
    for (int b = 0; b < 9; ++b) {
      trace.push_back({.kind = UopKind::kScalar, .dep = 1});
    }
    // Write a packed register group to the scratch kernel every
    // `vector_bits` sequences.
    ++packed_in_group;
    if (packed_in_group == static_cast<std::uint64_t>(vector_bytes) * 8) {
      packed_in_group = 0;
      for (int r = 0; r < 9; ++r) {
        trace.push_back({.kind = UopKind::kStore,
                         .addr = kScratchBase + seq * 2 + r,
                         .bytes = static_cast<std::uint16_t>(vector_bytes)});
      }
    }
  }
}

}  // namespace

LayerSimResult simulate_binary_conv_layer(const bnn::OpRecord& op,
                                          ConvVariant variant,
                                          const StreamInfo* stream,
                                          const CpuParams& cpu,
                                          const DecoderParams& decoder_params,
                                          const SamplingParams& sampling) {
  const LayerGeometry g = LayerGeometry::from_op(op, cpu.vector_bits);
  const int vector_bytes = cpu.vector_bits / 8;
  LayerSimResult result;
  result.name = op.name;
  result.variant = variant;

  if (variant != ConvVariant::kBaseline) {
    check(stream != nullptr,
          "simulate_binary_conv_layer: compressed variants need a stream");
    check(static_cast<std::int64_t>(stream->code_lengths.size()) ==
              g.in_channels * g.out_channels,
          "simulate_binary_conv_layer: stream length mismatch");
  }

  InOrderCore core(cpu);

  // --- One-time software decode pass (sampled, linear cost). ---
  if (variant == ConvVariant::kSwDecode) {
    const std::size_t total =
        static_cast<std::size_t>(g.in_channels * g.out_channels);
    const std::size_t sample = std::min<std::size_t>(total, 16384);
    std::vector<MicroOp> decode_trace;
    std::uint64_t bits_done = 0;
    emit_sw_decode(decode_trace, *stream, 0, sample, bits_done,
                   vector_bytes);
    const CoreStats stats = core.run(decode_trace);
    const double scale =
        static_cast<double>(total) / static_cast<double>(sample);
    result.decode_cycles =
        static_cast<std::uint64_t>(static_cast<double>(stats.cycles) * scale);
    result.sampled_uops += stats.uops;
  }

  // --- The row sweeps. ---
  const std::int64_t rows_to_sim =
      std::min<std::int64_t>(g.out_h,
                             sampling.warmup_rows + sampling.sample_rows);
  const std::int64_t warmup =
      rows_to_sim > sampling.warmup_rows ? sampling.warmup_rows : 0;

  std::uint64_t counted_cycles = 0;
  std::int64_t counted_rows = 0;
  for (std::int64_t row = 0; row < rows_to_sim; ++row) {
    std::vector<MicroOp> trace;
    emit_row(trace, g, variant, row, vector_bytes);

    CoreStats stats;
    if (variant == ConvVariant::kHwDecode) {
      // One lddu activation streams the whole kernel for this row sweep.
      std::vector<std::uint32_t> group_sizes;
      group_sizes.reserve(
          static_cast<std::size_t>(g.out_channels * g.groups));
      for (std::int64_t o = 0; o < g.out_channels; ++o) {
        for (std::int64_t grp = 0; grp < g.groups; ++grp) {
          const std::int64_t lo = grp * cpu.vector_bits;
          const std::int64_t hi =
              std::min<std::int64_t>(g.in_channels, lo + cpu.vector_bits);
          group_sizes.push_back(static_cast<std::uint32_t>(hi - lo));
        }
      }
      DecoderUnitRuntime decoder(decoder_params, core.memory(), *stream,
                                 std::move(group_sizes),
                                 static_cast<int>(g.positions()),
                                 core.cycle());
      stats = core.run(trace, &decoder);
    } else {
      stats = core.run(trace);
    }

    result.sampled_uops += stats.uops;
    if (row >= warmup) {
      counted_cycles += stats.cycles;
      ++counted_rows;
      result.load_stall_cycles += stats.load_stall_cycles;
      result.ldps_stall_cycles += stats.ldps_stall_cycles;
      result.l1_misses += stats.l1_misses;
      result.l2_misses += stats.l2_misses;
      result.dram_accesses += stats.dram_accesses;
    }
  }
  check(counted_rows > 0, "simulate_binary_conv_layer: nothing sampled");
  const double per_row = static_cast<double>(counted_cycles) /
                         static_cast<double>(counted_rows);
  result.cycles =
      result.decode_cycles +
      static_cast<std::uint64_t>(per_row * static_cast<double>(g.out_h));
  return result;
}

}  // namespace bkc::hwsim
