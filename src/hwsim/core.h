#pragma once
// A trace-driven in-order dual-issue core model (ARM A53 class).
//
// The core consumes a stream of micro-ops with explicit data
// dependencies. Issue is in order, `issue_width` per cycle; loads do not
// block issue (the A53 supports a small number of outstanding misses)
// but any consumer of a load's result stalls until the line returns -
// which is exactly the "loads to fetch the weights are in the critical
// path" behaviour the paper builds on (Sec I).

#include <cstdint>
#include <span>
#include <vector>

#include "hwsim/cache.h"
#include "hwsim/decoder_unit.h"
#include "hwsim/params.h"

namespace bkc::hwsim {

enum class UopKind : std::uint8_t {
  kScalar,      ///< 1-cycle integer ALU op
  kVector,      ///< 1-cycle 128-bit NEON op (eor / cnt / add)
  kLoad,        ///< memory load through the cache hierarchy
  kStore,       ///< memory store (write-allocate, fire-and-forget)
  kLoadPacked,  ///< ldps: pop a packed register from the decoding unit
  kBranch,      ///< predicted branch, occupies an issue slot
};

/// One micro-op. `dep` is a relative backward distance to the producer
/// this op must wait for (0 = no dependency, 1 = previous uop, ...).
struct MicroOp {
  UopKind kind = UopKind::kScalar;
  std::uint32_t dep = 0;
  std::uint64_t addr = 0;  ///< loads/stores
  std::uint16_t bytes = 0;
};

/// Outcome of running one trace.
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t uops = 0;
  std::uint64_t load_stall_cycles = 0;  ///< cycles lost waiting on loads
  std::uint64_t ldps_stall_cycles = 0;  ///< cycles lost waiting on ldps
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_accesses = 0;
};

/// The core. Holds no trace state between run() calls; the memory
/// hierarchy (and its cache contents) persists across calls so
/// consecutive traces see warm caches.
class InOrderCore {
 public:
  explicit InOrderCore(const CpuParams& params);

  /// Execute `trace` starting at the current core cycle. If the trace
  /// contains kLoadPacked uops, `decoder` must be non-null.
  CoreStats run(std::span<const MicroOp> trace,
                DecoderUnitRuntime* decoder = nullptr);

  MemoryHierarchy& memory() { return memory_; }
  const MemoryHierarchy& memory() const { return memory_; }

  std::uint64_t cycle() const { return cycle_; }

  /// Reset timing and cache state.
  void reset();

 private:
  CpuParams params_;
  MemoryHierarchy memory_;
  std::uint64_t cycle_ = 0;
};

}  // namespace bkc::hwsim
