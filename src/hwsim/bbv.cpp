#include "hwsim/bbv.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace bkc::hwsim {

GeometryKey GeometryKey::from_op(const bnn::OpRecord& op) {
  return GeometryKey{.in_channels = op.kernel_shape.in_channels,
                     .out_channels = op.kernel_shape.out_channels,
                     .kernel = op.kernel_shape.kernel_h,
                     .stride = op.geometry.stride,
                     .padding = op.geometry.padding,
                     .in_h = op.input_shape.height,
                     .in_w = op.input_shape.width,
                     .out_h = op.output_shape.height,
                     .out_w = op.output_shape.width};
}

std::vector<double> block_signature(const compress::BlockStreamView& block) {
  check(!block.code_lengths.empty(),
        "block_signature: block carries no code-length vector");
  std::vector<double> histogram(static_cast<std::size_t>(kSignatureBins),
                                0.0);
  for (const std::uint8_t length : block.code_lengths) {
    check(length >= 1, "block_signature: zero-length codeword");
    const int bin = std::min<int>(length, kSignatureBins) - 1;
    histogram[static_cast<std::size_t>(bin)] += 1.0;
  }
  const double total = static_cast<double>(block.code_lengths.size());
  for (double& h : histogram) h /= total;
  return histogram;
}

std::vector<std::vector<double>> project_signatures(
    const std::vector<std::vector<double>>& signatures, int dims,
    std::uint64_t seed) {
  check(dims >= 1, "project_signatures: dims must be >= 1");
  for (const auto& signature : signatures) {
    check(static_cast<int>(signature.size()) == kSignatureBins,
          "project_signatures: signature has " +
              std::to_string(signature.size()) + " entries, expected " +
              std::to_string(kSignatureBins));
  }
  // One shared matrix, entries in fixed row-major order: the projection
  // of a signature depends on (dims, seed) alone, never on how many
  // other signatures ride along.
  std::uint64_t state = seed;
  Rng rng(splitmix64(state));
  const double scale = 1.0 / std::sqrt(static_cast<double>(dims));
  std::vector<double> matrix;
  matrix.reserve(static_cast<std::size_t>(dims) * kSignatureBins);
  for (int d = 0; d < dims; ++d) {
    for (int b = 0; b < kSignatureBins; ++b) {
      matrix.push_back(rng.normal() * scale);
    }
  }

  std::vector<std::vector<double>> projected;
  projected.reserve(signatures.size());
  for (const auto& signature : signatures) {
    std::vector<double> point(static_cast<std::size_t>(dims), 0.0);
    for (int d = 0; d < dims; ++d) {
      double dot = 0.0;
      const double* row =
          matrix.data() + static_cast<std::size_t>(d) * kSignatureBins;
      for (int b = 0; b < kSignatureBins; ++b) {
        dot += row[b] * signature[static_cast<std::size_t>(b)];
      }
      point[static_cast<std::size_t>(d)] = dot;
    }
    projected.push_back(std::move(point));
  }
  return projected;
}

}  // namespace bkc::hwsim
