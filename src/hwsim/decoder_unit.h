#pragma once
// The decoding unit (Fig. 6): streaming unit + packing unit.
//
// Functional behaviour lives in compress::GroupedHuffmanCodec (what the
// bits mean); this model adds *timing*: when is each channel-packed
// register available to an `ldps` instruction?
//
//   - The streaming unit fetches the compressed stream in T-byte chunks
//     from DRAM into a double-buffered input buffer; a new fetch is
//     issued while previous bits decode (Sec IV-C).
//   - The stream parser + decoder table emit one decoded bit sequence
//     per cycle once bits are available.
//   - The packing unit distributes each decoded sequence over k (=9)
//     packing registers of R (=128) bits; a register group becomes
//     readable when its R sequences have been packed, and the register
//     file has room for two groups (double buffering) - the decoder
//     stalls when both groups are full and unread.
//
// The model is driven lazily from the consuming core: `pop(cycle)`
// returns the cycle at which the next packed register is in a CPU
// register. Stream fetches go through the shared MemoryHierarchy so
// decoder traffic occupies the same DRAM channel as CPU misses.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "hwsim/cache.h"
#include "hwsim/params.h"

namespace bkc::hwsim {

/// Static description of one compressed kernel stream: the per-sequence
/// codeword lengths in stream order (canonical o-major enumeration).
/// Non-owning — `code_lengths` borrows the artifact that carries the
/// lengths (compress::KernelCompression::code_lengths, a
/// BlockStreamView, or an OwnedStreamInfo), which must outlive every
/// use. The struct itself is two words; pass and copy it freely.
struct StreamInfo {
  std::span<const std::uint8_t> code_lengths;  ///< bits per sequence
  std::uint64_t total_bits = 0;

  /// Borrow `lengths` and sum the total.
  static StreamInfo over(std::span<const std::uint8_t> lengths);
  double mean_bits() const;
};

/// Owning companion for call sites that fabricate or compute a length
/// vector on the spot (tests, single-kernel demos): holds the vector
/// and hands out borrowing views over it. Call view() after the object
/// has reached its final location — the view borrows the heap buffer,
/// so moving the owner afterwards keeps it valid.
struct OwnedStreamInfo {
  std::vector<std::uint8_t> lengths;

  static OwnedStreamInfo from_lengths(std::vector<std::uint8_t> lengths) {
    return {std::move(lengths)};
  }
  StreamInfo view() const { return StreamInfo::over(lengths); }
};

/// Timing model of one decoding-unit activation (one lddu configuration
/// streaming `sequences_per_group`-sized groups until the stream ends).
class DecoderUnitRuntime {
 public:
  /// `group_sizes[g]` = number of sequences channel-packed into group g
  /// (R, except possibly less for the last input-channel group).
  /// Each group produces `regs_per_group` packed registers to pop.
  DecoderUnitRuntime(const DecoderParams& params, MemoryHierarchy& memory,
                     const StreamInfo& stream,
                     std::vector<std::uint32_t> group_sizes,
                     int regs_per_group, std::uint64_t start_cycle);

  /// Cycle at which the next packed register (pops are strictly in
  /// order) is available in a CPU register, given the core asks at
  /// `cycle`. Advances internal pop state.
  std::uint64_t pop(std::uint64_t cycle);

  /// Registers still unread.
  std::uint64_t remaining_pops() const;

  /// Cycles the *unit* spent waiting for stream bits (diagnostics).
  std::uint64_t fetch_wait_cycles() const { return fetch_wait_cycles_; }

 private:
  /// Ensure group `g`'s ready time is computed (decodes lazily).
  void ensure_group(std::size_t g);

  DecoderParams params_;
  MemoryHierarchy* memory_;
  /// Copied in (StreamInfo is a two-word view); the borrowed lengths
  /// must outlive the runtime.
  StreamInfo stream_;
  std::vector<std::uint32_t> group_sizes_;
  int regs_per_group_;

  // Decode progress.
  std::size_t next_seq_ = 0;           ///< next sequence to decode
  std::uint64_t bits_fetched_ = 0;     ///< stream bits available
  std::uint64_t bits_consumed_ = 0;    ///< stream bits already decoded
  std::uint64_t fetch_done_cycle_ = 0; ///< completion of last fetch
  std::uint64_t stream_request_cycle_ = 0;  ///< activation start (prefetch)
  std::uint64_t chunks_fetched_ = 0;
  std::uint64_t dram_latency_ = 0;
  std::uint64_t chunk_transfer_cycles_ = 0;
  std::uint64_t decoder_time_ = 0;     ///< decoder pipeline clock
  std::uint64_t fetch_wait_cycles_ = 0;

  std::vector<std::uint64_t> group_ready_;  ///< computed lazily
  std::size_t groups_computed_ = 0;

  // Pop state.
  std::size_t next_pop_ = 0;
  std::vector<std::uint64_t> group_freed_;  ///< when group slot was freed
  std::uint64_t last_pop_cycle_ = 0;
};

}  // namespace bkc::hwsim
