#pragma once
// Set-associative LRU caches and the two-level hierarchy + DRAM channel.

#include <cstdint>
#include <vector>

#include "hwsim/params.h"

namespace bkc::hwsim {

/// One set-associative, write-allocate, LRU cache level. Addresses are
/// byte addresses in the simulated physical space.
class Cache {
 public:
  Cache(std::int64_t size_bytes, int ways, int line_bytes);

  /// Look up (and on miss, fill) the line containing `addr`.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Look up without filling (used by prefetch probes).
  bool probe(std::uint64_t addr) const;

  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  std::int64_t line_bytes() const { return line_bytes_; }

 private:
  std::int64_t sets_;
  int ways_;
  std::int64_t line_bytes_;
  // tags_[set * ways + way]; lru_[same index] = last-use stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::vector<bool> valid_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Result of one memory access through the hierarchy.
struct AccessResult {
  int latency = 0;      ///< load-to-use cycles
  bool l1_hit = false;
  bool l2_hit = false;
  bool dram = false;
};

/// L1 + L2 + DRAM with a simple bandwidth-occupancy channel model.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const CpuParams& params);

  /// Access `bytes` at `addr` at time `cycle`; straddling accesses touch
  /// every line they cover (latency of the slowest).
  AccessResult access(std::uint64_t addr, int bytes, std::uint64_t cycle);

  /// A DRAM block transfer that bypasses the caches (the decoding unit's
  /// streaming fetches). Returns completion cycle.
  std::uint64_t stream_fetch(int bytes, std::uint64_t cycle);

  /// Account decoder-stream traffic that is scheduled analytically (the
  /// streaming unit's continuous prefetch, Sec IV-C). The volume is
  /// recorded for the traffic statistics; occupancy is not charged to
  /// the channel because the stream uses well under 10% of its
  /// bandwidth.
  void note_stream_traffic(int bytes);

  void reset();

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  std::uint64_t dram_accesses() const { return dram_accesses_; }
  std::uint64_t stream_bytes() const { return stream_bytes_; }

 private:
  CpuParams params_;
  Cache l1_;
  Cache l2_;
  std::uint64_t dram_busy_until_ = 0;
  std::uint64_t dram_accesses_ = 0;
  std::uint64_t stream_bytes_ = 0;
  std::vector<std::uint64_t> miss_slot_free_;
};

}  // namespace bkc::hwsim
