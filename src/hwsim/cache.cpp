#include "hwsim/cache.h"

#include <algorithm>

#include "util/check.h"

namespace bkc::hwsim {

namespace {
bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(std::int64_t size_bytes, int ways, int line_bytes)
    : sets_(size_bytes / (ways * line_bytes)),
      ways_(ways),
      line_bytes_(line_bytes) {
  check(ways >= 1, "Cache: need at least one way");
  check(is_pow2(line_bytes), "Cache: line size must be a power of two");
  check(sets_ >= 1 && is_pow2(sets_),
        "Cache: size/(ways*line) must be a power-of-two set count");
  const auto entries = static_cast<std::size_t>(sets_ * ways_);
  tags_.assign(entries, 0);
  lru_.assign(entries, 0);
  valid_.assign(entries, false);
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const auto set = static_cast<std::size_t>(
      line % static_cast<std::uint64_t>(sets_));
  const std::size_t base = set * static_cast<std::size_t>(ways_);
  ++stamp_;
  for (int w = 0; w < ways_; ++w) {
    if (valid_[base + static_cast<std::size_t>(w)] &&
        tags_[base + static_cast<std::size_t>(w)] == line) {
      lru_[base + static_cast<std::size_t>(w)] = stamp_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Fill the LRU way.
  std::size_t victim = base;
  for (int w = 1; w < ways_; ++w) {
    const std::size_t i = base + static_cast<std::size_t>(w);
    if (!valid_[i]) {
      victim = i;
      break;
    }
    if (lru_[i] < lru_[victim]) victim = i;
  }
  tags_[victim] = line;
  lru_[victim] = stamp_;
  valid_[victim] = true;
  return false;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const auto set = static_cast<std::size_t>(
      line % static_cast<std::uint64_t>(sets_));
  const std::size_t base = set * static_cast<std::size_t>(ways_);
  for (int w = 0; w < ways_; ++w) {
    const std::size_t i = base + static_cast<std::size_t>(w);
    if (valid_[i] && tags_[i] == line) return true;
  }
  return false;
}

void Cache::reset() {
  std::fill(valid_.begin(), valid_.end(), false);
  stamp_ = hits_ = misses_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CpuParams& params)
    : params_(params),
      l1_(params.l1_bytes, params.l1_ways, params.line_bytes),
      l2_(params.l2_bytes, params.l2_ways, params.line_bytes) {
  check(params.max_outstanding_misses >= 1,
        "MemoryHierarchy: need at least one miss slot");
  miss_slot_free_.assign(
      static_cast<std::size_t>(params.max_outstanding_misses), 0);
}

AccessResult MemoryHierarchy::access(std::uint64_t addr, int bytes,
                                     std::uint64_t cycle) {
  check(bytes >= 1, "MemoryHierarchy: bytes must be positive");
  AccessResult result;
  const auto line_bytes = static_cast<std::uint64_t>(params_.line_bytes);
  const std::uint64_t first = addr / line_bytes;
  const std::uint64_t last =
      (addr + static_cast<std::uint64_t>(bytes) - 1) / line_bytes;
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint64_t line_addr = line * line_bytes;
    int latency = params_.l1_latency;
    if (l1_.access(line_addr)) {
      result.l1_hit = true;
    } else if (l2_.access(line_addr)) {
      result.l2_hit = true;
      latency += params_.l2_latency;
    } else {
      result.dram = true;
      ++dram_accesses_;
      const auto transfer = static_cast<std::uint64_t>(
          static_cast<double>(params_.line_bytes) /
          params_.dram_bytes_per_cycle);
      // The linefill needs (a) a free miss slot - the core sustains only
      // a few outstanding misses - and (b) the channel.
      auto slot = miss_slot_free_.begin();
      for (auto it = miss_slot_free_.begin(); it != miss_slot_free_.end();
           ++it) {
        if (*it < *slot) slot = it;
      }
      const std::uint64_t start =
          std::max({cycle, *slot, dram_busy_until_});
      dram_busy_until_ = start + transfer;
      const std::uint64_t fill_done =
          start + static_cast<std::uint64_t>(params_.dram_latency) + transfer;
      *slot = fill_done;  // slot held until the fill returns
      latency += params_.l2_latency + static_cast<int>(fill_done - cycle);
    }
    result.latency = std::max(result.latency, latency);
  }
  return result;
}

std::uint64_t MemoryHierarchy::stream_fetch(int bytes, std::uint64_t cycle) {
  check(bytes >= 1, "MemoryHierarchy: bytes must be positive");
  ++dram_accesses_;
  const auto transfer = static_cast<std::uint64_t>(
      static_cast<double>(bytes) / params_.dram_bytes_per_cycle);
  const std::uint64_t start = std::max(cycle, dram_busy_until_);
  dram_busy_until_ = start + transfer;
  return start + static_cast<std::uint64_t>(params_.dram_latency) + transfer;
}

void MemoryHierarchy::note_stream_traffic(int bytes) {
  check(bytes >= 1, "MemoryHierarchy: bytes must be positive");
  ++dram_accesses_;
  stream_bytes_ += static_cast<std::uint64_t>(bytes);
}

void MemoryHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  dram_busy_until_ = 0;
  dram_accesses_ = 0;
  stream_bytes_ = 0;
  std::fill(miss_slot_free_.begin(), miss_slot_free_.end(), 0);
}

}  // namespace bkc::hwsim
