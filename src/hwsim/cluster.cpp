#include "hwsim/cluster.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace bkc::hwsim {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  check(a.size() == b.size(), "squared_distance: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::size_t closest_member(const std::vector<std::vector<double>>& points,
                           const std::vector<std::size_t>& members,
                           const std::vector<double>& centroid) {
  check(!members.empty(), "closest_member: no members");
  std::size_t best = members.front();
  double best_distance = squared_distance(points[best], centroid);
  for (std::size_t i = 1; i < members.size(); ++i) {
    const double d = squared_distance(points[members[i]], centroid);
    if (d < best_distance) {
      best_distance = d;
      best = members[i];
    }
  }
  return best;
}

namespace {

/// k-means++ seeding: first center uniform, every next center drawn
/// proportionally to squared distance from the nearest chosen center.
/// When every remaining point coincides with a chosen center (all
/// squared distances zero, so the weighted draw has no mass) the next
/// center falls back to the lowest-index point not already chosen —
/// duplicate inputs stay deterministic instead of tripping
/// weighted_pick's positive-sum precondition.
std::vector<std::vector<double>> plus_plus_init(
    const std::vector<std::vector<double>>& points, int k, Rng& rng) {
  const std::size_t n = points.size();
  std::vector<std::size_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k));
  chosen.push_back(static_cast<std::size_t>(rng.below(n)));

  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  while (chosen.size() < static_cast<std::size_t>(k)) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i],
                            squared_distance(points[i], points[chosen.back()]));
      total += nearest[i];
    }
    std::size_t next = n;
    if (total > 0.0) {
      next = rng.weighted_pick(nearest);
      // A zero-weight index can slip through on round-off; fall through
      // to the deterministic backstop if it names a chosen point.
      if (nearest[next] == 0.0) next = n;
    }
    if (next == n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (std::find(chosen.begin(), chosen.end(), i) == chosen.end()) {
          next = i;
          break;
        }
      }
    }
    chosen.push_back(next);
  }

  std::vector<std::vector<double>> centroids;
  centroids.reserve(chosen.size());
  for (const std::size_t index : chosen) centroids.push_back(points[index]);
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansConfig& config) {
  check(!points.empty(), "kmeans: no points");
  check(config.k >= 1 &&
            static_cast<std::size_t>(config.k) <= points.size(),
        "kmeans: k must be in [1, points.size()], got " +
            std::to_string(config.k) + " for " +
            std::to_string(points.size()) + " points");
  check(config.max_iters >= 1, "kmeans: max_iters must be >= 1");
  const std::size_t dims = points.front().size();
  check(dims >= 1, "kmeans: zero-dimensional points");
  for (const auto& p : points) {
    check(p.size() == dims, "kmeans: mixed point dimensions");
  }

  std::uint64_t state = config.seed;
  Rng rng(splitmix64(state));

  KMeansResult result;
  result.centroids = plus_plus_init(points, config.k, rng);
  result.assignment.assign(points.size(), 0);

  for (int iter = 0; iter < config.max_iters; ++iter) {
    // Assign: nearest centroid, ties to the lowest index (strict <).
    bool changed = iter == 0;  // the first pass always counts
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_distance =
          squared_distance(points[i], result.centroids[0]);
      for (int c = 1; c < config.k; ++c) {
        const double d = squared_distance(
            points[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best_distance) {
          best_distance = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;

    // Update: centroid = mean of members. A cluster left empty (fewer
    // distinct points than k) keeps its old centroid; it can only stay
    // empty — every point strictly prefers a centroid it is closer to —
    // so the result is still deterministic and callers simply see an
    // empty cluster.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(config.k),
        std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(config.k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(config.k); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        sums[c][d] /= static_cast<double>(counts[c]);
      }
      result.centroids[c] = std::move(sums[c]);
    }
  }
  return result;
}

}  // namespace bkc::hwsim
