#pragma once
// Micro-op trace generation for binary convolution layers.
//
// The simulated schedule mirrors daBNN's direct convolution on the
// channel-packed layout (Sec IV-B): for every output row, the kernel is
// swept output-channel-major; the 9 (or 1) weight words of one
// (output-channel, channel-group) pair are loaded into vector registers,
// then the row's pixels stream through xnor+popcount+accumulate. The
// kernel is therefore re-fetched once per output row - for the large
// layers its footprint exceeds the L2, which puts the weight loads on
// the critical path exactly as the paper observes.
//
// Three variants are generated from the same schedule:
//   kBaseline - weights loaded from the uncompressed kernel.
//   kSwDecode - a software decode pass (stream loads, table lookups and
//               bit-packing ops per sequence) materialises the kernel
//               into a scratch buffer once per inference; the sweep then
//               loads weights from that scratch buffer.
//   kHwDecode - weight loads are replaced by `ldps` pops from the
//               decoding unit, which re-streams the compressed kernel in
//               the background each row sweep.

#include <string>

#include "bnn/model.h"
#include "hwsim/core.h"
#include "hwsim/decoder_unit.h"
#include "hwsim/params.h"

namespace bkc::hwsim {

enum class ConvVariant { kBaseline, kSwDecode, kHwDecode };

std::string variant_name(ConvVariant variant);

/// Resolved geometry of a binary conv layer in channel groups of the
/// vector width.
struct LayerGeometry {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;  ///< kernel side (1 or 3)
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t out_h = 0, out_w = 0;
  std::int64_t groups = 0;  ///< ceil(in_channels / vector_bits)

  static LayerGeometry from_op(const bnn::OpRecord& op, int vector_bits);
  std::int64_t positions() const { return kernel * kernel; }
};

/// Result of simulating one layer (scaled to the full layer).
struct LayerSimResult {
  std::string name;
  ConvVariant variant = ConvVariant::kBaseline;
  std::uint64_t cycles = 0;         ///< full-layer estimate
  std::uint64_t decode_cycles = 0;  ///< sw variant: one-time decode pass
  std::uint64_t sampled_uops = 0;
  std::uint64_t load_stall_cycles = 0;
  std::uint64_t ldps_stall_cycles = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_accesses = 0;
};

/// Simulate one binary conv layer. `stream` carries the compressed
/// stream's codeword lengths and is required for kSwDecode / kHwDecode.
LayerSimResult simulate_binary_conv_layer(
    const bnn::OpRecord& op, ConvVariant variant,
    const StreamInfo* stream = nullptr, const CpuParams& cpu = {},
    const DecoderParams& decoder_params = {},
    const SamplingParams& sampling = {});

}  // namespace bkc::hwsim
