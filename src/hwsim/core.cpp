#include "hwsim/core.h"

#include <algorithm>
#include <array>

#include "util/check.h"

namespace bkc::hwsim {

InOrderCore::InOrderCore(const CpuParams& params)
    : params_(params), memory_(params) {}

void InOrderCore::reset() {
  memory_.reset();
  cycle_ = 0;
}

CoreStats InOrderCore::run(std::span<const MicroOp> trace,
                           DecoderUnitRuntime* decoder) {
  CoreStats stats;
  stats.uops = trace.size();
  const std::uint64_t l1_misses_before = memory_.l1().misses();
  const std::uint64_t l2_misses_before = memory_.l2().misses();
  const std::uint64_t dram_before = memory_.dram_accesses();
  const std::uint64_t start_cycle = cycle_;

  // Completion times of the most recent uops (dependency window).
  constexpr std::size_t kWindow = 1024;
  std::array<std::uint64_t, kWindow> complete{};

  std::uint64_t issue_cycle = cycle_;
  int slots_left = params_.issue_width;
  std::uint64_t last_complete = cycle_;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const MicroOp& uop = trace[i];

    // Dependency: stall issue until the producer's result is ready.
    std::uint64_t ready = issue_cycle;
    if (uop.dep != 0) {
      check(uop.dep <= i && uop.dep < kWindow,
            "InOrderCore: dependency outside the window");
      const std::uint64_t producer_done = complete[(i - uop.dep) % kWindow];
      if (producer_done > ready) {
        const std::uint64_t stall = producer_done - ready;
        const UopKind producer_kind = trace[i - uop.dep].kind;
        if (producer_kind == UopKind::kLoadPacked) {
          stats.ldps_stall_cycles += stall;
        } else {
          stats.load_stall_cycles += stall;
        }
        ready = producer_done;
      }
    }
    if (ready > issue_cycle) {
      issue_cycle = ready;
      slots_left = params_.issue_width;
    }
    if (slots_left == 0) {
      ++issue_cycle;
      slots_left = params_.issue_width;
    }
    --slots_left;

    // Execute.
    std::uint64_t done = issue_cycle + 1;
    switch (uop.kind) {
      case UopKind::kScalar:
      case UopKind::kVector:
      case UopKind::kBranch:
        break;
      case UopKind::kLoad: {
        const AccessResult r = memory_.access(
            uop.addr, std::max<int>(uop.bytes, 1), issue_cycle);
        done = issue_cycle + static_cast<std::uint64_t>(r.latency);
        break;
      }
      case UopKind::kStore: {
        // Stores retire through the write buffer; they touch the cache
        // (write-allocate) but do not stall the pipeline.
        memory_.access(uop.addr, std::max<int>(uop.bytes, 1), issue_cycle);
        break;
      }
      case UopKind::kLoadPacked: {
        check(decoder != nullptr,
              "InOrderCore: kLoadPacked needs a decoder unit");
        done = decoder->pop(issue_cycle);
        break;
      }
    }
    complete[i % kWindow] = done;
    last_complete = std::max(last_complete, done);
  }

  cycle_ = std::max(issue_cycle + 1, last_complete);
  stats.cycles = cycle_ - start_cycle;
  stats.l1_misses = memory_.l1().misses() - l1_misses_before;
  stats.l2_misses = memory_.l2().misses() - l2_misses_before;
  stats.dram_accesses = memory_.dram_accesses() - dram_before;
  return stats;
}

}  // namespace bkc::hwsim
