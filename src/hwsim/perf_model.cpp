#include "hwsim/perf_model.h"

#include <algorithm>

#include "util/check.h"

namespace bkc::hwsim {

void ModelTiming::add(OpTiming op) {
  cycles_by_class[op.op_class] += op.cycles;
  total_cycles += op.cycles;
  ops.push_back(std::move(op));
}

double ModelTiming::fraction(bnn::OpClass op_class) const {
  check(total_cycles > 0, "ModelTiming: no cycles recorded");
  const auto it = cycles_by_class.find(op_class);
  if (it == cycles_by_class.end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(total_cycles);
}

std::uint64_t analytic_op_cycles(const bnn::OpRecord& op,
                                 const CpuParams& cpu) {
  const auto macs = static_cast<double>(op.macs);
  double compute = 0.0;
  switch (op.op_class) {
    case bnn::OpClass::kInputLayer:
      compute = macs / cpu.stem_macs_per_cycle;
      break;
    case bnn::OpClass::kOutputLayer:
      // daBNN-style deployments leave the classifier as a scalar fp32
      // GEMV after dequantization; this is what makes the output layer
      // ~19% of runtime in the paper's Table I despite its tiny MAC
      // count.
      compute = macs * cpu.fc_cycles_per_mac;
      break;
    default:
      compute = macs / cpu.elementwise_ops_per_cycle;
      break;
  }
  // Parameter traffic at DRAM bandwidth (streamed once).
  const double bytes = static_cast<double>(op.storage_bits) / 8.0;
  const double traffic = bytes / cpu.dram_bytes_per_cycle;
  return static_cast<std::uint64_t>(std::max(compute, traffic));
}

ModelTiming time_model_baseline(const std::vector<bnn::OpRecord>& ops,
                                const CpuParams& cpu,
                                const SamplingParams& sampling) {
  ModelTiming timing;
  for (const auto& op : ops) {
    std::uint64_t cycles = 0;
    const bool binary_conv = op.precision_bits == 1 &&
                             (op.op_class == bnn::OpClass::kConv3x3 ||
                              op.op_class == bnn::OpClass::kConv1x1);
    if (binary_conv) {
      cycles = simulate_binary_conv_layer(op, ConvVariant::kBaseline,
                                          nullptr, cpu, {}, sampling)
                   .cycles;
    } else {
      cycles = analytic_op_cycles(op, cpu);
    }
    timing.add({.name = op.name, .op_class = op.op_class, .cycles = cycles});
  }
  return timing;
}

double LayerComparison::sw_slowdown() const {
  check(baseline_cycles > 0, "LayerComparison: baseline is zero");
  return static_cast<double>(sw_cycles) /
         static_cast<double>(baseline_cycles);
}

double LayerComparison::hw_speedup() const {
  check(hw_cycles > 0, "LayerComparison: hw cycles is zero");
  return static_cast<double>(baseline_cycles) /
         static_cast<double>(hw_cycles);
}

double SpeedupReport::model_sw_slowdown() const {
  check(total_baseline > 0, "SpeedupReport: empty");
  return static_cast<double>(total_sw) /
         static_cast<double>(total_baseline);
}

double SpeedupReport::model_hw_speedup() const {
  check(total_hw > 0, "SpeedupReport: empty");
  return static_cast<double>(total_baseline) /
         static_cast<double>(total_hw);
}

double SpeedupReport::conv3x3_sw_slowdown() const {
  std::uint64_t base = 0;
  std::uint64_t sw = 0;
  for (const auto& layer : conv3x3) {
    base += layer.baseline_cycles;
    sw += layer.sw_cycles;
  }
  check(base > 0, "SpeedupReport: no 3x3 layers");
  return static_cast<double>(sw) / static_cast<double>(base);
}

double SpeedupReport::conv3x3_hw_speedup() const {
  std::uint64_t base = 0;
  std::uint64_t hw = 0;
  for (const auto& layer : conv3x3) {
    base += layer.baseline_cycles;
    hw += layer.hw_cycles;
  }
  check(hw > 0, "SpeedupReport: no 3x3 layers");
  return static_cast<double>(base) / static_cast<double>(hw);
}

bool cycles_identical(const SpeedupReport& a, const SpeedupReport& b) {
  if (a.conv3x3.size() != b.conv3x3.size() ||
      a.other_cycles != b.other_cycles ||
      a.total_baseline != b.total_baseline || a.total_sw != b.total_sw ||
      a.total_hw != b.total_hw) {
    return false;
  }
  for (std::size_t i = 0; i < a.conv3x3.size(); ++i) {
    if (a.conv3x3[i].name != b.conv3x3[i].name ||
        a.conv3x3[i].baseline_cycles != b.conv3x3[i].baseline_cycles ||
        a.conv3x3[i].sw_cycles != b.conv3x3[i].sw_cycles ||
        a.conv3x3[i].hw_cycles != b.conv3x3[i].hw_cycles) {
      return false;
    }
  }
  return true;
}

StreamInfo stream_info_for(const compress::KernelCompression& compression) {
  check(compression.code_lengths.size() ==
            compression.compressed.num_sequences(),
        "stream_info_for: artifact code-length vector has " +
            std::to_string(compression.code_lengths.size()) +
            " entries for " +
            std::to_string(compression.compressed.num_sequences()) +
            " sequences");
  // The lengths are borrowed, the total is already known: nothing is
  // recomputed here (their sum is stream_bits by construction).
  return StreamInfo{.code_lengths = compression.code_lengths,
                    .total_bits = compression.compressed.stream_bits};
}

StreamInfo stream_info_for(const compress::BlockStreamView& block) {
  check(block.code_lengths.size() == block.num_sequences(),
        "stream_info_for: block view code-length vector has " +
            std::to_string(block.code_lengths.size()) + " entries for " +
            std::to_string(block.num_sequences()) + " sequences");
  return StreamInfo{.code_lengths = block.code_lengths,
                    .total_bits = block.stream_bits};
}

SpeedupReport compare_model(const compress::CompressedModelView& view,
                            const CpuParams& cpu,
                            const DecoderParams& decoder,
                            const SamplingParams& sampling) {
  SpeedupReport report;

  std::size_t block_index = 0;
  for (const auto& op : view.ops) {
    const bool is_3x3_binary =
        op.precision_bits == 1 && op.op_class == bnn::OpClass::kConv3x3;
    if (is_3x3_binary) {
      check(block_index < view.blocks.size(),
            "compare_model: more 3x3 convs than compressed blocks");
      const StreamInfo stream =
          stream_info_for(view.blocks[block_index]);
      LayerComparison cmp;
      cmp.name = op.name;
      cmp.baseline_detail = simulate_binary_conv_layer(
          op, ConvVariant::kBaseline, nullptr, cpu, decoder, sampling);
      cmp.sw_detail = simulate_binary_conv_layer(
          op, ConvVariant::kSwDecode, &stream, cpu, decoder, sampling);
      cmp.hw_detail = simulate_binary_conv_layer(
          op, ConvVariant::kHwDecode, &stream, cpu, decoder, sampling);
      cmp.baseline_cycles = cmp.baseline_detail.cycles;
      cmp.sw_cycles = cmp.sw_detail.cycles;
      cmp.hw_cycles = cmp.hw_detail.cycles;
      report.conv3x3.push_back(std::move(cmp));
      ++block_index;
    } else if (op.precision_bits == 1 &&
               op.op_class == bnn::OpClass::kConv1x1) {
      report.other_cycles += simulate_binary_conv_layer(
                                 op, ConvVariant::kBaseline, nullptr, cpu,
                                 decoder, sampling)
                                 .cycles;
    } else {
      report.other_cycles += analytic_op_cycles(op, cpu);
    }
  }
  check(block_index == view.blocks.size(),
        "compare_model: unmatched compressed blocks");

  report.total_baseline = report.other_cycles;
  report.total_sw = report.other_cycles;
  report.total_hw = report.other_cycles;
  for (const auto& layer : report.conv3x3) {
    report.total_baseline += layer.baseline_cycles;
    report.total_sw += layer.sw_cycles;
    report.total_hw += layer.hw_cycles;
  }
  return report;
}

}  // namespace bkc::hwsim
