#include "hwsim/sampled.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "hwsim/bbv.h"
#include "hwsim/cluster.h"
#include "hwsim/conv_trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bkc::hwsim {

namespace {

/// One representative simulation to run: a pure function of (op,
/// variant, block stream), so the task list can be executed in any
/// order — and in parallel — with each result landing in its own
/// preassigned slot.
struct SimTask {
  const bnn::OpRecord* op = nullptr;
  ConvVariant variant = ConvVariant::kBaseline;
  const compress::BlockStreamView* block = nullptr;  ///< null for baseline
};

double distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace

SampledSpeedupReport compare_model_sampled(
    const compress::CompressedModelView& view, const SamplingConfig& config,
    const CpuParams& cpu, const DecoderParams& decoder,
    const SamplingParams& sampling) {
  check(config.projection_dims >= 1,
        "compare_model_sampled: projection_dims must be >= 1");
  check(config.max_clusters_per_group >= 1,
        "compare_model_sampled: max_clusters_per_group must be >= 1");
  check(config.max_kmeans_iters >= 1,
        "compare_model_sampled: max_kmeans_iters must be >= 1");
  check(config.num_threads >= 1,
        "compare_model_sampled: num_threads must be >= 1");

  // ---- Pass 1: walk the ops exactly as compare_model does, recording
  // which block belongs to which 3x3 op and memoizing one baseline
  // simulation slot per distinct geometry (3x3 and binary 1x1 alike —
  // baseline traces consume no stream, so equal geometry means equal
  // cycles and the shared slot is exact, not an approximation).
  std::vector<SimTask> tasks;
  std::map<GeometryKey, std::size_t> baseline_slot;
  const auto baseline_slot_for = [&](const bnn::OpRecord& op) {
    const GeometryKey key = GeometryKey::from_op(op);
    const auto it = baseline_slot.find(key);
    if (it != baseline_slot.end()) return it->second;
    const std::size_t slot = tasks.size();
    tasks.push_back({.op = &op, .variant = ConvVariant::kBaseline});
    baseline_slot.emplace(key, slot);
    return slot;
  };

  const std::size_t num_blocks = view.blocks.size();
  std::vector<const bnn::OpRecord*> block_op(num_blocks, nullptr);
  std::map<GeometryKey, std::vector<std::size_t>> groups;
  std::size_t block_index = 0;
  for (const auto& op : view.ops) {
    if (op.precision_bits != 1) continue;
    if (op.op_class == bnn::OpClass::kConv3x3) {
      check(block_index < num_blocks,
            "compare_model_sampled: more 3x3 convs than compressed blocks");
      block_op[block_index] = &op;
      groups[GeometryKey::from_op(op)].push_back(block_index);
      baseline_slot_for(op);
      ++block_index;
    } else if (op.op_class == bnn::OpClass::kConv1x1) {
      baseline_slot_for(op);
    }
  }
  check(block_index == num_blocks,
        "compare_model_sampled: unmatched compressed blocks");

  // ---- Pass 2: fingerprint + project every block once (shared matrix),
  // then cluster within each geometry group. All seeds derive from
  // config.seed in fixed order: first the projection, then one k-means
  // seed per group in GeometryKey order (std::map iteration is sorted,
  // so the order is a function of the view, not of insertion history).
  std::vector<std::vector<double>> signatures;
  signatures.reserve(num_blocks);
  for (const auto& block : view.blocks) {
    signatures.push_back(block_signature(block));
  }
  std::uint64_t seed_state = config.seed;
  const std::uint64_t projection_seed = splitmix64(seed_state);
  const std::vector<std::vector<double>> projected = project_signatures(
      signatures, config.projection_dims, projection_seed);

  SamplingSummary summary;
  summary.num_blocks = num_blocks;
  summary.num_geometry_groups = groups.size();

  std::vector<std::size_t> block_cluster(num_blocks, 0);
  struct RepSlots {
    std::size_t sw = 0;
    std::size_t hw = 0;
  };
  std::vector<RepSlots> cluster_slots;
  for (const auto& [key, members] : groups) {
    const std::uint64_t group_seed = splitmix64(seed_state);
    std::vector<std::vector<double>> points;
    points.reserve(members.size());
    for (const std::size_t b : members) points.push_back(projected[b]);

    const int k = static_cast<int>(
        std::min<std::size_t>(config.max_clusters_per_group, members.size()));
    const KMeansResult clustering = kmeans(
        points,
        {.k = k, .seed = group_seed, .max_iters = config.max_kmeans_iters});

    for (int c = 0; c < k; ++c) {
      std::vector<std::size_t> local;  // indices into `points`/`members`
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (clustering.assignment[i] == c) local.push_back(i);
      }
      if (local.empty()) continue;  // duplicate-heavy group, see cluster.h

      const std::size_t rep_local = closest_member(
          points, local, clustering.centroids[static_cast<std::size_t>(c)]);
      const std::size_t rep = members[rep_local];

      SampledClusterInfo info;
      info.representative = rep;
      const double rep_bits = std::max<double>(
          1.0, static_cast<double>(view.blocks[rep].stream_bits));
      double distance_sum = 0.0;
      for (const std::size_t i : local) {
        const std::size_t b = members[i];
        info.members.push_back(b);
        block_cluster[b] = summary.clusters.size();
        const double d = distance(projected[b], projected[rep]);
        distance_sum += d;
        info.max_signature_distance = std::max(info.max_signature_distance, d);
        const double skew =
            std::abs(static_cast<double>(view.blocks[b].stream_bits) -
                     static_cast<double>(view.blocks[rep].stream_bits)) /
            rep_bits;
        info.max_stream_bits_skew = std::max(info.max_stream_bits_skew, skew);
      }
      info.mean_signature_distance =
          distance_sum / static_cast<double>(local.size());
      summary.max_signature_distance =
          std::max(summary.max_signature_distance, info.max_signature_distance);
      summary.max_stream_bits_skew =
          std::max(summary.max_stream_bits_skew, info.max_stream_bits_skew);

      cluster_slots.push_back({.sw = tasks.size(), .hw = tasks.size() + 1});
      tasks.push_back({.op = block_op[rep],
                       .variant = ConvVariant::kSwDecode,
                       .block = &view.blocks[rep]});
      tasks.push_back({.op = block_op[rep],
                       .variant = ConvVariant::kHwDecode,
                       .block = &view.blocks[rep]});
      summary.clusters.push_back(std::move(info));
    }
  }
  summary.num_clusters = summary.clusters.size();
  summary.simulated_blocks = summary.num_clusters;
  summary.simulated_fraction =
      num_blocks == 0 ? 1.0
                      : static_cast<double>(summary.simulated_blocks) /
                            static_cast<double>(num_blocks);

  // ---- Pass 3: run every task into its preassigned slot. Each task is
  // an independent pure function (fresh core per call), so the fan-out
  // is bit-identical at every thread count; only the serial assembly
  // below orders anything.
  std::vector<LayerSimResult> results(tasks.size());
  parallel_for(static_cast<std::int64_t>(tasks.size()), config.num_threads,
               [&](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t i = begin; i < end; ++i) {
                   const SimTask& task = tasks[static_cast<std::size_t>(i)];
                   if (task.block == nullptr) {
                     results[static_cast<std::size_t>(i)] =
                         simulate_binary_conv_layer(*task.op, task.variant,
                                                    nullptr, cpu, decoder,
                                                    sampling);
                   } else {
                     const StreamInfo stream = stream_info_for(*task.block);
                     results[static_cast<std::size_t>(i)] =
                         simulate_binary_conv_layer(*task.op, task.variant,
                                                    &stream, cpu, decoder,
                                                    sampling);
                   }
                 }
               });

  // ---- Pass 4: assemble the report in op order, every member reading
  // its geometry's baseline slot (exact) and its cluster
  // representative's sw/hw results (the extrapolation).
  SampledSpeedupReport out;
  SpeedupReport& report = out.report;
  block_index = 0;
  for (const auto& op : view.ops) {
    const bool is_3x3_binary =
        op.precision_bits == 1 && op.op_class == bnn::OpClass::kConv3x3;
    if (is_3x3_binary) {
      const std::size_t cluster = block_cluster[block_index];
      const RepSlots& slots = cluster_slots[cluster];
      LayerComparison cmp;
      cmp.name = op.name;
      cmp.baseline_detail =
          results[baseline_slot.at(GeometryKey::from_op(op))];
      cmp.sw_detail = results[slots.sw];
      cmp.hw_detail = results[slots.hw];
      // The details carry the representative's name; relabel so the
      // report reads per member layer, like the exact one.
      cmp.baseline_detail.name = op.name;
      cmp.sw_detail.name = op.name;
      cmp.hw_detail.name = op.name;
      cmp.baseline_cycles = cmp.baseline_detail.cycles;
      cmp.sw_cycles = cmp.sw_detail.cycles;
      cmp.hw_cycles = cmp.hw_detail.cycles;
      report.conv3x3.push_back(std::move(cmp));
      ++block_index;
    } else if (op.precision_bits == 1 &&
               op.op_class == bnn::OpClass::kConv1x1) {
      report.other_cycles +=
          results[baseline_slot.at(GeometryKey::from_op(op))].cycles;
    } else {
      report.other_cycles += analytic_op_cycles(op, cpu);
    }
  }

  report.total_baseline = report.other_cycles;
  report.total_sw = report.other_cycles;
  report.total_hw = report.other_cycles;
  for (const auto& layer : report.conv3x3) {
    report.total_baseline += layer.baseline_cycles;
    report.total_sw += layer.sw_cycles;
    report.total_hw += layer.hw_cycles;
  }
  out.summary = std::move(summary);
  return out;
}

}  // namespace bkc::hwsim
