#pragma once
// Simulation parameters (Table IV of the paper).
//
// The paper evaluates on a gem5 model of an ARM A53 (in-order, dual
// issue, 128-bit NEON) at 1 GHz with 32 KB L1 / 256 KB L2 / DDR4 DRAM,
// extended with the decoding unit of Fig. 6. These structs carry the
// same structural parameters for our trace-driven timing model; all
// cycle numbers are in CPU cycles at 1 GHz.

#include <cstdint>

namespace bkc::hwsim {

/// Core and memory-hierarchy parameters (Table IV, CPU section).
struct CpuParams {
  // Core.
  int issue_width = 2;          ///< A53: dual-issue in-order
  int vector_bits = 128;        ///< NEON register width
  int l1_latency = 3;           ///< load-to-use, cycles
  int l2_latency = 13;          ///< cycles
  /// Effective DRAM latency including controller queueing. Measured
  /// load-to-use latencies on A53-class boards (e.g. RPi3 under
  /// LMbench) sit at 150-250 ns; 200 cycles at 1 GHz is mid-range.
  int dram_latency = 200;
  double dram_bytes_per_cycle = 12.8;  ///< DDR4-2666-ish, 1 channel
  /// Concurrent linefills the core sustains (the A53 LSU supports 2-3
  /// outstanding data-cache misses). This bound is what puts streamed
  /// weight loads on the critical path of an in-order core (Sec I).
  int max_outstanding_misses = 2;

  // Caches.
  std::int64_t l1_bytes = 32 * 1024;
  int l1_ways = 4;
  std::int64_t l2_bytes = 256 * 1024;
  int l2_ways = 8;
  int line_bytes = 64;

  // Throughput of the non-binary layers (used by the analytic cost
  // model for the Table I execution-time column). These three constants
  // are calibrated against the paper's Table I execution-time split:
  // the im2col int8 stem reaches a little over 2 MAC/cycle, and the
  // classifier - which daBNN-style deployments leave as a dependency-
  // bound scalar fp32 GEMV after dequantization - costs ~12 cycles per
  // MAC, which is what makes the output layer ~19% of runtime in the
  // paper despite its tiny MAC count.
  double stem_macs_per_cycle = 2.3;
  double fc_cycles_per_mac = 12.0;
  double elementwise_ops_per_cycle = 3.4;  ///< BN / RPReLU / sign / pool
};

/// Decoding-unit parameters (Table IV, decoding unit section).
struct DecoderParams {
  int max_nodes = 4;
  std::int64_t uncompressed_table_bytes = 1024;
  std::int64_t register_file_bytes = 256;
  std::int64_t input_buffer_bytes = 256;
  int fetch_chunk_bytes = 64;     ///< T bytes per LSU request
  int decode_per_cycle = 1;       ///< sequences decoded per cycle
  int configure_cycles = 24;      ///< lddu: load config + reset
  int ldps_cycles = 1;            ///< register-file read when ready
  // Stream-fetch schedule (kept consistent with CpuParams' DRAM model).
  int stream_latency_cycles = 200;
  double stream_bytes_per_cycle = 12.8;
};

/// How many output rows of each conv layer to simulate in detail; the
/// result is scaled to the full layer. Rows beyond the warm-up row see
/// steady-state cache behaviour, so a small sample is representative.
struct SamplingParams {
  std::int64_t sample_rows = 3;
  std::int64_t warmup_rows = 1;  ///< simulated but not counted
};

}  // namespace bkc::hwsim
